#!/usr/bin/env bash
# Builds the benchmarks in Release mode and runs the discovery-engine
# benchmark suite (FIG1 discovery paths + FIG4 index refresh), merging
# the results into BENCH_discovery.json at the repo root, plus the
# concurrent-read scaling suite into BENCH_concurrency.json, the
# fault-tolerance suite into BENCH_fault.json, and the federation
# transport suite (simulated RPC round-trip accounting) into
# BENCH_federation.json.
#
# Usage: tools/run_bench.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-bench}"
OUT_JSON="$REPO_ROOT/BENCH_discovery.json"
CONC_JSON="$REPO_ROOT/BENCH_concurrency.json"
FAULT_JSON="$REPO_ROOT/BENCH_fault.json"
FED_JSON="$REPO_ROOT/BENCH_federation.json"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target bench_fig1_schema_ops bench_fig4_federated_index \
           bench_conc_catalog bench_fault_recovery bench_fed_rpc \
           bench_wire_server bench_wire_faults bench_traffic >/dev/null

# Every bench result must come from a Release-compiled binary. The
# binaries stamp vdg_build_type into their context (bench/bench_main.cc)
# because the system libbenchmark's own library_build_type describes
# the Debian package, not our flags.
assert_release() {
  if ! grep -q '"vdg_build_type": "release"' "$1"; then
    echo "BENCH BUILD-TYPE ERROR: $1 was not produced by a Release build" >&2
    exit 1
  fi
}

FIG1_FILTER='BM_AttributeDiscovery|BM_TypeDiscovery|BM_MaterializedDiscovery|BM_DerivationDiscoveryByInput|BM_ShardScanView|BM_ShardScanLegacyCopy'
FIG4_FILTER='BM_IndexQuery|BM_DirectScan|BM_IndexRefresh|BM_DeltaRefresh|BM_FullRebuild'

FIG1_OUT="$BUILD_DIR/bench_fig1_discovery.json"
FIG4_OUT="$BUILD_DIR/bench_fig4_refresh.json"

"$BUILD_DIR/bench/bench_fig1_schema_ops" \
  --benchmark_filter="$FIG1_FILTER" \
  --benchmark_out="$FIG1_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

"$BUILD_DIR/bench/bench_fig4_federated_index" \
  --benchmark_filter="$FIG4_FILTER" \
  --benchmark_out="$FIG4_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

assert_release "$FIG1_OUT"
assert_release "$FIG4_OUT"

# Merge the two result files and compute the headline delta-vs-full
# refresh speedup. Python (stdlib only) ships with the toolchain.
python3 - "$FIG1_OUT" "$FIG4_OUT" "$OUT_JSON" <<'PYEOF'
import json
import sys

fig1_path, fig4_path, out_path = sys.argv[1:4]
with open(fig1_path) as f:
    fig1 = json.load(f)
with open(fig4_path) as f:
    fig4 = json.load(f)

merged = {
    "context": fig1.get("context", {}),
    "benchmarks": fig1.get("benchmarks", []) + fig4.get("benchmarks", []),
}

# Headline number: delta refresh vs full rebuild at matching churn.
times = {b["name"]: b["real_time"] for b in merged["benchmarks"]}
speedups = {}
for name, t in times.items():
    if not name.startswith("BM_DeltaRefresh/"):
        continue
    churn = name.split("/")[1]
    full = times.get("BM_FullRebuild/" + churn)
    if full and t > 0:
        speedups["changed_entries_" + churn] = round(full / t, 1)
merged["delta_refresh_speedup"] = speedups

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

print("wrote", out_path)
for k, v in sorted(speedups.items()):
    print(f"  delta vs full rebuild, {k}: {v}x")
PYEOF

# Concurrent-read scaling: reader throughput vs thread count against
# the snapshot-isolated catalog (1..16 threads, pure reads and
# read+writer), plus the commit/discovery/cold-start gates:
#   - ApplyBatch group commit >= 5x per-record-commit throughput
#   - selective indexed conjunction >= 10x the pre-compression seed
#     rate, and the broad shard scan >= 10x as well: the zero-copy
#     result plane (NameList views into the pinned snapshot) removed
#     the ~2us/query string-copy API floor that used to cap it at 3x
#   - flat-snapshot cold start cheaper than full journal replay
#   - reads while a writer streams batches within 20% of no-writer
CONC_OUT="$BUILD_DIR/bench_conc_catalog.json"
"$BUILD_DIR/bench/bench_conc_catalog" \
  --benchmark_out="$CONC_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

assert_release "$CONC_OUT"

python3 - "$CONC_OUT" "$CONC_JSON" <<'PYEOF'
import json
import sys

src_path, out_path = sys.argv[1:3]
with open(src_path) as f:
    raw = json.load(f)

# Per-benchmark curve: thread count -> aggregate reader items/sec.
# The read benches report agg_items_per_sec (a kIsRate counter summed
# across threads, see bench_conc_catalog.cc) alongside the per-thread
# rate; items_per_second remains as a fallback for benches without the
# explicit counters. Single-threaded benches (group commit, snapshot
# isolation, cold start) are gated below instead.
def agg_rate(b):
    return b.get("agg_items_per_sec") or b.get("items_per_second", 0.0)

curves = {}
per_thread_curves = {}
items = {}
times = {}
for b in raw.get("benchmarks", []):
    name = b["name"]  # e.g. BM_ConcIndexedFind/real_time/threads:4
    base = name.split("/")[0]
    if "threads:" in name:
        threads = int(name.rsplit("threads:", 1)[1])
        curves.setdefault(base, {})[threads] = round(agg_rate(b))
        per_thread_curves.setdefault(base, {})[threads] = round(
            b.get("per_thread_items_per_sec", 0.0))
        if threads == 1:
            items[base] = agg_rate(b)  # 1-thread rate is the gate input
            times[base] = b.get("real_time", 0.0)
    else:
        items[base] = agg_rate(b)
        times[base] = b.get("real_time", 0.0)

# Compressed-discovery gates, both against the pre-compression seed
# baseline (sorted-vector posting lists + linear set_intersection,
# measured on the same host/workload at the seed). Two rates because
# they bound different layers:
#   - BM_IndexedFindCompressedSkewed (selective two-predicate
#     conjunction, the workload shape the discovery index exists for)
#     isolates the index: postings + galloping intersection + row
#     mapping, ~14 result names. Gated >= 10x.
#   - BM_ConcIndexedFind (single-predicate shard scan) returns ~164 of
#     2615 names per query. It used to be gated at only 3x because
#     copying those names out through Result<vector<string>> cost
#     ~2.1us/query — more than the whole 10x budget. The zero-copy
#     NameList result plane emits pinned views instead, so the shard
#     scan now carries the same >= 10x floor as the selective path.
SEED_INDEXED_FIND_ITEMS_PER_SEC = 55908.0
indexed_find = items.get("BM_IndexedFindCompressedSkewed")
indexed_speedup = None
if indexed_find:
    indexed_speedup = round(indexed_find / SEED_INDEXED_FIND_ITEMS_PER_SEC, 1)
shard_scan = items.get("BM_ConcIndexedFind")
shard_scan_speedup = None
if shard_scan:
    shard_scan_speedup = round(shard_scan / SEED_INDEXED_FIND_ITEMS_PER_SEC, 1)

# Cold-start gate: mmap flat snapshot vs full journal replay.
cold_replay_ms = times.get("BM_ColdStartReplay")
cold_flat_ms = times.get("BM_ColdStartFlatSnapshot")
cold_speedup = None
if cold_replay_ms and cold_flat_ms:
    cold_replay_ms = round(cold_replay_ms / 1e6, 3)  # ns -> ms
    cold_flat_ms = round(cold_flat_ms / 1e6, 3)
    cold_speedup = round(cold_replay_ms / max(cold_flat_ms, 1e-9), 1)

group_speedup = None
per_record = items.get("BM_ApplyBatch_PerRecordCommit")
group = items.get("BM_ApplyBatch_GroupCommit")
if per_record and group:
    group_speedup = round(group / per_record, 1)

isolation_ratio = None
baseline = items.get("BM_SnapshotFindNoWriter")
under_writes = items.get("BM_SnapshotFindDuringWrites")
if baseline and under_writes:
    isolation_ratio = round(under_writes / baseline, 3)

result = {
    "context": raw.get("context", {}),
    "read_throughput_items_per_sec_by_threads": curves,
    "per_thread_items_per_sec_by_threads": per_thread_curves,
    "group_commit_speedup": group_speedup,
    "snapshot_read_under_writes_ratio": isolation_ratio,
    "indexed_find_items_per_sec": indexed_find,
    "indexed_find_seed_items_per_sec": SEED_INDEXED_FIND_ITEMS_PER_SEC,
    "indexed_find_speedup_vs_seed": indexed_speedup,
    "shard_scan_items_per_sec": shard_scan,
    "shard_scan_speedup_vs_seed": shard_scan_speedup,
    "compressed_find_items_per_sec": {
        k: items.get(k)
        for k in ("BM_IndexedFindCompressed", "BM_IndexedFindCompressedSkewed",
                  "BM_IndexedFindCompressedDense")
    },
    "cold_start_replay_ms": cold_replay_ms,
    "cold_start_flat_snapshot_ms": cold_flat_ms,
    "cold_start_speedup": cold_speedup,
    "benchmarks": raw.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print("wrote", out_path)
cores = raw.get("context", {}).get("num_cpus", "?")
print(f"  host cores: {cores} (scaling with threads needs cores to scale on)")
for base, curve in sorted(curves.items()):
    pts = " ".join(f"{t}t={v}" for t, v in sorted(curve.items()))
    print(f"  {base}: {pts}")
print(f"  group commit vs per-record commit: {group_speedup}x")
print(f"  reads under writes vs no writer: {isolation_ratio}")
print(f"  selective indexed find vs seed baseline: {indexed_speedup}x "
      f"({indexed_find} vs {SEED_INDEXED_FIND_ITEMS_PER_SEC} items/s)")
print(f"  shard scan vs seed baseline: {shard_scan_speedup}x "
      f"({shard_scan} vs {SEED_INDEXED_FIND_ITEMS_PER_SEC} items/s)")
print(f"  cold start: replay {cold_replay_ms}ms vs flat snapshot "
      f"{cold_flat_ms}ms ({cold_speedup}x)")

failed = []
if (group_speedup or 0) < 5:
    failed.append("group commit < 5x per-record commit")
if (isolation_ratio or 0) < 0.8:
    failed.append("reads under writes dropped > 20% vs no-writer baseline")
if (indexed_speedup or 0) < 10:
    failed.append("selective indexed find < 10x the pre-compression seed rate")
if (shard_scan_speedup or 0) < 10:
    failed.append("shard scan < 10x the pre-compression seed rate")
if (cold_speedup or 0) <= 1.0:
    failed.append("flat-snapshot cold start not cheaper than full replay")
if failed:
    print("CATALOG-COMMIT REGRESSION:", failed)
    sys.exit(1)
PYEOF

# Fault tolerance: workflow success rates under injected job/transfer
# failures and a mid-run site crash with data loss. The acceptance bar
# (10%/10% faults + crash -> >= 99% success) is checked here so a
# regression fails the script.
FAULT_OUT="$BUILD_DIR/bench_fault_recovery.json"
"$BUILD_DIR/bench/bench_fault_recovery" \
  --benchmark_out="$FAULT_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

assert_release "$FAULT_OUT"

python3 - "$FAULT_OUT" "$FAULT_JSON" <<'PYEOF'
import json
import sys

src_path, out_path = sys.argv[1:3]
with open(src_path) as f:
    raw = json.load(f)

scenarios = {}
for b in raw.get("benchmarks", []):
    name = b["name"]  # e.g. BM_FaultSweep/10/10
    scenarios[name] = {
        "success_rate": b.get("success_rate"),
        "runs": b.get("runs"),
        "job_failures_per_run": b.get("job_failures_per_run"),
        "transfer_failures_per_run": b.get("transfer_failures_per_run"),
        "failovers_per_run": b.get("failovers_per_run"),
        "rederivations_per_run": b.get("rederivations_per_run"),
        "backoff_s_per_run": b.get("backoff_s_per_run"),
        "sim_makespan_s_avg": b.get("sim_makespan_s_avg"),
    }

result = {
    "context": raw.get("context", {}),
    "scenarios": scenarios,
    "benchmarks": raw.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print("wrote", out_path)
failed = []
for name, s in sorted(scenarios.items()):
    rate = s.get("success_rate")
    if rate is None:
        continue
    print(f"  {name}: success_rate={rate:.4f} over {int(s['runs'] or 0)} runs")
    if rate < 0.99:
        failed.append(name)
if failed:
    print("FAULT-TOLERANCE REGRESSION: success_rate < 0.99 in:", failed)
    sys.exit(1)
PYEOF

# Wire-layer chaos: client-visible availability with 5% connection
# resets + 5% frame corruption injected under the resilient client
# (two replica endpoints). The DESIGN.md §14 acceptance bar — at most
# one hard failure per thousand calls — is gated below and the stats
# land in BENCH_fault.json next to the workflow-level fault sweeps.
WIREFAULT_OUT="$BUILD_DIR/bench_wire_faults.json"
"$BUILD_DIR/bench/bench_wire_faults" \
  --benchmark_out="$WIREFAULT_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

assert_release "$WIREFAULT_OUT"

python3 "$REPO_ROOT/tools/check_bench_floor.py" "$WIREFAULT_OUT" \
  "BM_WireFaultAvailability/5/5" 0.999 availability

python3 - "$WIREFAULT_OUT" "$FAULT_JSON" <<'PYEOF'
import json
import sys

wire_path, fault_path = sys.argv[1:3]
with open(wire_path) as f:
    wire = json.load(f)
with open(fault_path) as f:
    fault = json.load(f)

scenarios = {}
for b in wire.get("benchmarks", []):
    name = b["name"]  # e.g. BM_WireFaultAvailability/5/5
    scenarios[name] = {
        "availability": b.get("availability"),
        "faults_injected": b.get("faults_injected"),
        "resets": b.get("resets"),
        "corruptions": b.get("corruptions"),
        "retries": b.get("retries"),
        "reconnects": b.get("reconnects"),
        "failovers": b.get("failovers"),
        "exhausted_calls": b.get("exhausted_calls"),
        "calls_per_sec": b.get("items_per_second"),
    }

fault["wire"] = scenarios
fault["benchmarks"] = fault.get("benchmarks", []) + wire.get("benchmarks", [])
with open(fault_path, "w") as f:
    json.dump(fault, f, indent=2)
    f.write("\n")

print("merged wire chaos results into", fault_path)
for name, s in sorted(scenarios.items()):
    avail = s.get("availability")
    if avail is None:
        continue
    print(f"  {name}: availability={avail:.4f} "
          f"({int(s.get('faults_injected') or 0)} faults, "
          f"{int(s.get('reconnects') or 0)} reconnects, "
          f"{int(s.get('retries') or 0)} retries)")
PYEOF

# Federation transport: round trips per FIG3 chain walk and per FIG4
# index refresh over simulated RPC, in naive / batched / cached modes,
# plus the loss+outage fault sweep. Gates: batching+cache must cut
# round trips >= 5x vs naive per-call RPC on both figures, and the
# fault sweep must complete with retries, not hard failures.
FED_OUT="$BUILD_DIR/bench_fed_rpc.json"
"$BUILD_DIR/bench/bench_fed_rpc" \
  --benchmark_out="$FED_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

assert_release "$FED_OUT"

python3 - "$FED_OUT" "$FED_JSON" <<'PYEOF'
import json
import sys

src_path, out_path = sys.argv[1:3]
with open(src_path) as f:
    raw = json.load(f)

trips = {}
sweep = {}
for b in raw.get("benchmarks", []):
    name = b["name"]
    if "round_trips" in b:
        trips[name] = b["round_trips"]
    if name.startswith("BM_FaultSweep"):
        sweep = {
            "retries": b.get("retries"),
            "lost_calls": b.get("lost_calls"),
            "outage_rejections": b.get("outage_rejections"),
            "failures": b.get("failures"),
        }

def ratio(naive, optimized):
    n, o = trips.get(naive), trips.get(optimized)
    if n is None or o is None:
        return None
    return round(n / max(o, 1e-9), 1)

savings = {
    # FIG3 steady state: batching collapses each chain link to one
    # compound trip, the cache amortizes repeat walks to ~zero.
    "fig3_chain_walk_naive_vs_cached":
        ratio("BM_Fig3ChainWalk_NaiveRpc", "BM_Fig3ChainWalk_CachedRpc"),
    "fig3_chain_walk_naive_vs_batched":
        ratio("BM_Fig3ChainWalk_NaiveRpc", "BM_Fig3ChainWalk_BatchedRpc"),
    # FIG4: a delta refresh at churn K costs K+2 trips naive, 3 batched.
    "fig4_refresh_naive_vs_batched":
        ratio("BM_Fig4Refresh_NaiveRpc", "BM_Fig4Refresh_BatchedRpc"),
    # Executor provenance write-back: the whole replica/invocation/
    # annotation batch ships as one compound trip instead of one per op.
    "executor_writeback_naive_vs_batched":
        ratio("BM_ExecutorWriteBack_NaiveRpc",
              "BM_ExecutorWriteBack_BatchedRpc"),
}

result = {
    "context": raw.get("context", {}),
    "round_trips_per_op": trips,
    "round_trips_saved": savings,
    "fault_sweep": sweep,
    "benchmarks": raw.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print("wrote", out_path)
for name, t in sorted(trips.items()):
    print(f"  {name}: {t:.3f} round trips/op")
for k, v in sorted(savings.items()):
    print(f"  {k}: {v}x")

failed = []
if (savings["fig3_chain_walk_naive_vs_cached"] or 0) < 5:
    failed.append("fig3 chain walk: batching+cache < 5x vs naive RPC")
if (savings["fig4_refresh_naive_vs_batched"] or 0) < 5:
    failed.append("fig4 refresh: batching < 5x vs naive RPC")
wb_naive = trips.get("BM_ExecutorWriteBack_NaiveRpc")
wb_batched = trips.get("BM_ExecutorWriteBack_BatchedRpc")
if wb_naive is None or wb_naive < 5:
    failed.append("executor write-back: naive RPC should cost >= 5 trips")
if wb_batched is None or wb_batched > 1.01:
    failed.append("executor write-back: batched RPC should be ONE trip")
if sweep.get("failures", 1) != 0:
    failed.append("fault sweep finished with hard failures")
if not sweep.get("retries"):
    failed.append("fault sweep exercised no retries")
if failed:
    print("FEDERATION-TRANSPORT REGRESSION:", failed)
    sys.exit(1)
PYEOF

# Real wire path: binary-codec encode/decode throughput and full
# client -> pipe -> worker-pool server round trips (workers 1..8),
# merged into BENCH_federation.json next to the simulated-RPC numbers.
# Floors (tools/check_bench_floor.py) are ~1/4 of the rates measured
# on the 1-CPU reference host — loose enough for shared runners, tight
# enough to catch the codec or dispatcher degrading by integer factors.
WIRE_OUT="$BUILD_DIR/bench_wire_server.json"
"$BUILD_DIR/bench/bench_wire_server" \
  --benchmark_out="$WIRE_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

assert_release "$WIRE_OUT"

# Reference-host rates (1-CPU dev box): request encode+decode ~3.6M/s,
# dataset-response encode+decode ~254K/s, single-worker round trip
# ~220K calls/s of CPU time.
python3 "$REPO_ROOT/tools/check_bench_floor.py" "$WIRE_OUT" \
  BM_WireEncodeDecodeRequest 900000
python3 "$REPO_ROOT/tools/check_bench_floor.py" "$WIRE_OUT" \
  BM_WireEncodeDecodeResponse 60000
python3 "$REPO_ROOT/tools/check_bench_floor.py" "$WIRE_OUT" \
  "BM_WireServerRoundTrip/1" 55000

python3 - "$WIRE_OUT" "$FED_JSON" <<'PYEOF'
import json
import sys

wire_path, fed_path = sys.argv[1:3]
with open(wire_path) as f:
    wire = json.load(f)
with open(fed_path) as f:
    fed = json.load(f)

items = {}
rtt_by_workers = {}
frame_bytes = None
for b in wire.get("benchmarks", []):
    name = b["name"]
    base = name.split("/")[0]
    rate = b.get("items_per_second", 0.0)
    if base == "BM_WireServerRoundTrip":
        rtt_by_workers[int(b.get("workers", name.rsplit("/", 1)[1]))] = {
            "calls_per_sec": round(rate),
            "round_trip_us": round(b.get("real_time", 0.0) / 1e3, 2),
        }
    else:
        items[base] = round(rate)
    if base == "BM_WireEncodeDecodeResponse":
        frame_bytes = b.get("frame_bytes")

fed["wire"] = {
    "encode_decode_request_frames_per_sec":
        items.get("BM_WireEncodeDecodeRequest"),
    "encode_decode_response_frames_per_sec":
        items.get("BM_WireEncodeDecodeResponse"),
    "response_frame_bytes": frame_bytes,
    "round_trip_by_workers": rtt_by_workers,
    "apply_batch_calls_per_sec": items.get("BM_WireServerApplyBatch"),
}
fed["benchmarks"] = fed.get("benchmarks", []) + wire.get("benchmarks", [])

with open(fed_path, "w") as f:
    json.dump(fed, f, indent=2)
    f.write("\n")

print("merged wire results into", fed_path)
for k, v in sorted(items.items()):
    print(f"  {k}: {v:,} frames/s")
for workers, point in sorted(rtt_by_workers.items()):
    print(f"  round trip, {workers} worker(s): {point['round_trip_us']}us "
          f"({point['calls_per_sec']:,} calls/s)")
PYEOF

# Sharded scale-out under open-loop traffic: BM_Traffic sweeps the
# shard count 1/2/4/8 at EQUAL offered load (the 1-shard run
# calibrates the rate; every later topology reuses it — see
# bench_traffic.cc). Two acceptance gates from ISSUE 10:
#   - aggregate predicate-query throughput grows >= 3x from 1 to 8
#     shards
#   - p99 latency at 8 shards is no worse than the saturated 1-shard
#     baseline (gated via check_bench_floor.py --ceiling)
TRAFFIC_OUT="$BUILD_DIR/bench_traffic.json"
"$BUILD_DIR/bench/bench_traffic" \
  --benchmark_out="$TRAFFIC_OUT" --benchmark_out_format=json

assert_release "$TRAFFIC_OUT"

# The ceiling for p99(8 shards) is the measured p99 of the 1-shard
# baseline from the same sweep, not a static number: equal offered
# load makes the comparison meaningful on any host speed.
P99_CEILING="$(python3 - "$TRAFFIC_OUT" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    raw = json.load(f)
for b in raw.get("benchmarks", []):
    if b["name"] == "BM_Traffic/1":
        print(b["p99_us"])
        break
PYEOF
)"
python3 "$REPO_ROOT/tools/check_bench_floor.py" --ceiling "$TRAFFIC_OUT" \
  "BM_Traffic/8" "$P99_CEILING" p99_us

python3 - "$TRAFFIC_OUT" "$FED_JSON" <<'PYEOF'
import json
import sys

traffic_path, fed_path = sys.argv[1:3]
with open(traffic_path) as f:
    traffic = json.load(f)
with open(fed_path) as f:
    fed = json.load(f)

by_shards = {}
for b in traffic.get("benchmarks", []):
    name = b["name"]  # BM_Traffic/<shards>
    if not name.startswith("BM_Traffic/"):
        continue
    by_shards[int(name.rsplit("/", 1)[1])] = {
        "offered_rate": b.get("offered_rate"),
        "completed_rate": round(b.get("completed_rate", 0.0)),
        "query_rate": round(b.get("query_rate", 0.0)),
        "errors": b.get("errors"),
        "users": b.get("users"),
        "p50_us": round(b.get("p50_us", 0.0), 1),
        "p95_us": round(b.get("p95_us", 0.0), 1),
        "p99_us": round(b.get("p99_us", 0.0), 1),
        "query_p99_us": round(b.get("query_p99_us", 0.0), 1),
    }

one, eight = by_shards.get(1, {}), by_shards.get(8, {})
query_scaling = None
if one.get("query_rate") and eight.get("query_rate"):
    query_scaling = round(eight["query_rate"] / one["query_rate"], 1)

fed["traffic"] = {
    "by_shards": by_shards,
    "query_rate_scaling_1_to_8": query_scaling,
}
fed["benchmarks"] = fed.get("benchmarks", []) + traffic.get("benchmarks", [])
with open(fed_path, "w") as f:
    json.dump(fed, f, indent=2)
    f.write("\n")

print("merged traffic results into", fed_path)
for shards, point in sorted(by_shards.items()):
    print(f"  {shards} shard(s): query_rate={point['query_rate']:,}/s "
          f"p99={point['p99_us']}us errors={point['errors']}")
print(f"  query-rate scaling 1 -> 8 shards: {query_scaling}x")

failed = []
if (query_scaling or 0) < 3:
    failed.append("query throughput grew < 3x from 1 to 8 shards")
for shards, point in sorted(by_shards.items()):
    if point.get("errors"):
        failed.append(f"traffic run at {shards} shard(s) had errors")
if failed:
    print("TRAFFIC-SCALING REGRESSION:", failed)
    sys.exit(1)
PYEOF
