#!/usr/bin/env python3
"""Lint: the result plane must stay zero-copy.

Name-returning query APIs in the catalog and federation layers return
``NameList`` (pinned snapshot views, one shared immutable list per
result) — never ``Result<std::vector<std::string>>`` or bare
``std::vector<std::string>``. A vector-of-strings return re-introduces
a per-call copy of every name and silently defeats the zero-copy
result plane (DESIGN.md §15).

This script scans the public headers of the result-plane layers for
function declarations that return an owned string vector and fails if
it finds any. Declarations can be suppressed — for genuinely
writer-side or diagnostic state that is not a name-result surface —
with a ``// result-api-ok`` comment on the same line.

Usage: check_result_api.py [repo_root]
"""

import pathlib
import re
import sys

# Layers whose headers form the result plane. Sources (.cc) are not
# scanned: locals and helpers may materialize owned strings (e.g.
# NameList::ToStrings at an explicit boundary); only the API surface
# is constrained.
SCAN_DIRS = ["src/catalog", "src/federation"]

# A declaration (or alias/field) whose type hands back an owned
# string vector: `Result<std::vector<std::string>>`,
# `std::vector<std::string>`, with or without whitespace variation.
VECTOR_RETURN = re.compile(
    r"(Result\s*<\s*)?std::vector\s*<\s*std::string\s*>"
)

SUPPRESS = "result-api-ok"


def check_file(path: pathlib.Path) -> list:
    violations = []
    in_block_comment = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("//"):
            continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            continue
        if SUPPRESS in line:
            continue
        m = VECTOR_RETURN.search(line)
        if not m:
            continue
        # Parameters taking a vector<string> (by value or const ref)
        # are fine — the constraint is on what the API hands back.
        # Heuristic: a match inside a parameter list follows '(' or ','
        # on the same line before the match with no ')' in between.
        before = line[: m.start()]
        depth = before.count("(") - before.count(")")
        if depth > 0:
            continue
        violations.append((lineno, line.rstrip()))
    return violations


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    failed = False
    for rel in SCAN_DIRS:
        base = root / rel
        if not base.is_dir():
            print(f"check_result_api: missing directory {base}", file=sys.stderr)
            return 2
        for header in sorted(base.glob("*.h")):
            for lineno, line in check_file(header):
                failed = True
                print(
                    f"{header.relative_to(root)}:{lineno}: "
                    f"owned string-vector return on the result plane "
                    f"(use NameList; see DESIGN.md §15): {line.strip()}"
                )
    if failed:
        print(
            "\ncheck_result_api: name-result APIs in src/catalog and "
            "src/federation headers must return NameList. Suppress "
            "genuinely writer-side state with '// result-api-ok'."
        )
        return 1
    print("check_result_api: result plane is zero-copy clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
